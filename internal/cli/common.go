package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
	"mccmesh/internal/scenario"
	"mccmesh/internal/stats"
)

// loadSpec reads a scenario from a spec file ("-" = stdin).
func loadSpec(path string) (*scenario.Scenario, error) {
	if path == "-" {
		return scenario.Load(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// rejectFlagClash errors when any flag outside the allowed set was given
// together with the named driving flag (-spec, -json): the run is defined by
// that flag's input, and silently ignoring another flag would misreport what
// ran. The driving flag itself is always allowed.
func rejectFlagClash(fs *flag.FlagSet, driver, hint string, allowed ...string) error {
	ok := map[string]bool{driver: true}
	for _, a := range allowed {
		ok[a] = true
	}
	var clash []string
	fs.Visit(func(f *flag.Flag) {
		if !ok[f.Name] {
			clash = append(clash, "-"+f.Name)
		}
	})
	if len(clash) > 0 {
		return fmt.Errorf("%s cannot be combined with -%s (%s)", strings.Join(clash, ", "), driver, hint)
	}
	return nil
}

// rejectFlagSpecClash is rejectFlagClash for the -spec driving flag.
func rejectFlagSpecClash(fs *flag.FlagSet, allowed ...string) error {
	return rejectFlagClash(fs, "spec", "edit the spec file instead", allowed...)
}

// loadSpecWithExec loads a spec file and applies the -workers / -shards
// execution overrides, each only when the flag was given on the command line
// (the execution knobs are the one part of a spec the CLI may override — they
// are not part of the result).
func loadSpecWithExec(path string, fs *flag.FlagSet, workers, shards int) (*scenario.Scenario, error) {
	sc, err := loadSpec(path)
	if err != nil {
		return nil, err
	}
	setWorkers, setShards := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers":
			setWorkers = true
		case "shards":
			setShards = true
		}
	})
	if !setWorkers && !setShards {
		return sc, nil
	}
	spec := sc.Spec()
	if setWorkers {
		spec.SetWorkers(workers)
	}
	if setShards {
		spec.SetShards(shards)
	}
	return scenario.New(spec)
}

// profileFlags is the -cpuprofile/-memprofile pair shared by run and bench.
type profileFlags struct {
	cpu, mem *string
}

func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file"),
		mem: fs.String("memprofile", "", "write a pprof heap profile at the end of the run to this file"),
	}
}

// start begins CPU profiling when requested and returns the shutdown function
// to defer: it stops the CPU profile and writes the heap profile. cmd names
// the subcommand in error messages. Heap-profile errors are reported to
// stderr rather than returned — by the time they surface the run's real
// output already happened, and discarding it over a profile would be worse.
func (pf *profileFlags) start(cmd string) (stop func(), err error) {
	stopCPU := func() {}
	if *pf.cpu != "" {
		f, err := os.Create(*pf.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		stopCPU()
		if *pf.mem == "" {
			return
		}
		f, err := os.Create(*pf.mem)
		if err != nil {
			fmt.Fprintf(stderr, "mcc %s: -memprofile: %v\n", cmd, err)
			return
		}
		defer f.Close()
		runtime.GC() // flush recently freed objects out of the profile
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			fmt.Fprintf(stderr, "mcc %s: -memprofile: %v\n", cmd, err)
		}
	}, nil
}

// writeMetrics writes the telemetry sections of the reports to path as one
// JSON document (the -metrics flag).
func writeMetrics(path string, reps ...*scenario.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return scenario.WriteMetricsJSON(f, reps...)
}

// writeTraces writes the sampled packet traces of the reports to path as JSON
// Lines (the -trace flag).
func writeTraces(path string, reps ...*scenario.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, rep := range reps {
		if err := rep.WriteTracesJSONL(f); err != nil {
			return err
		}
	}
	return nil
}

// counterTable renders the merged telemetry counters of the reports as one
// human-readable table (the -v flag): one column per cell would explode on
// big sweeps, so counters are summed across cells (gauges take the max at
// merge time already, per cell; across cells the sum of per-cell maxima is
// still the honest aggregate for a quick scan — per-cell detail lives in
// -metrics).
func counterTable(reps ...*scenario.Report) *stats.Table {
	totals := make(map[string]int64)
	cells := 0
	for _, rep := range reps {
		for _, ct := range rep.Telemetry {
			cells++
			for name, v := range ct.Counters {
				totals[name] += v
			}
		}
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	t := &stats.Table{Title: "Telemetry counters", Columns: []string{"counter", "total"}}
	for _, name := range names {
		t.AddRow(name, strconv.FormatInt(totals[name], 10))
	}
	t.AddNote("summed across %d cell(s); per-cell snapshots via -metrics", cells)
	return t
}

// newScenario validates a spec built in-process.
func newScenario(spec scenario.Spec) (*scenario.Scenario, error) {
	return scenario.New(spec)
}

// dumpSpec prints the normalised spec of a scenario to stdout.
func dumpSpec(sc *scenario.Scenario) int {
	if err := sc.WriteSpec(stdout); err != nil {
		return fail("dump-spec", err)
	}
	return 0
}

// parseMeshSpec parses "10x10x10" / "16x16" into a mesh spec.
func parseMeshSpec(s string) (scenario.MeshSpec, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 && len(parts) != 3 {
		return scenario.MeshSpec{}, fmt.Errorf("invalid -dims %q (want AxB or AxBxC)", s)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return scenario.MeshSpec{}, fmt.Errorf("invalid -dims %q: %q is not a valid extent", s, p)
		}
		vals[i] = v
	}
	if len(vals) == 2 {
		return scenario.MeshSpec{X: vals[0], Y: vals[1]}, nil
	}
	return scenario.MeshSpec{X: vals[0], Y: vals[1], Z: vals[2]}, nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseInts parses a comma-separated list of non-negative ints.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("invalid count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseRates parses a comma-separated list of rates in (0,1].
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		// The inverted comparison rejects NaN, which satisfies neither bound.
		if err != nil || !(v > 0 && v <= 1) {
			return nil, fmt.Errorf("invalid rate %q (want a value in (0,1])", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// setupFlags is the mesh/fault/seed flag block shared by sim, proto and viz:
// the part of a scenario those inspectors consume.
type setupFlags struct {
	fs      *flag.FlagSet
	dims    *string
	faults  *int
	cluster *int
	csize   *int
	seed    *uint64
	spec    *string
	dump    *bool
}

func addSetupFlags(fs *flag.FlagSet, defaultDims string, defaultFaults int) *setupFlags {
	return &setupFlags{
		fs:      fs,
		dims:    fs.String("dims", defaultDims, "mesh dimensions, e.g. 16x16 or 10x10x10"),
		faults:  fs.Int("faults", defaultFaults, "number of uniform random node faults"),
		cluster: fs.Int("cluster", 0, "if > 0, inject this many clusters of -clustersize faults instead"),
		csize:   fs.Int("clustersize", 5, "faults per cluster when -cluster is used"),
		seed:    fs.Uint64("seed", 1, "random seed"),
		spec:    fs.String("spec", "", "load mesh/faults/seed from a scenario spec file (- = stdin)"),
		dump:    fs.Bool("dump-spec", false, "print the scenario spec for these flags and exit"),
	}
}

// scenario translates the setup flags (or the loaded spec file) into a
// validated scenario whose mesh/faults/seed the inspector subcommands use.
// With -spec, only -dump-spec and the subcommand's own presentation flags
// (allowed) may be combined — a silently ignored -faults would misreport what
// ran.
func (sf *setupFlags) scenario(allowed ...string) (*scenario.Scenario, error) {
	if *sf.spec != "" {
		if err := rejectFlagSpecClash(sf.fs, append(allowed, "dump-spec")...); err != nil {
			return nil, err
		}
		return loadSpec(*sf.spec)
	}
	m, err := parseMeshSpec(*sf.dims)
	if err != nil {
		return nil, err
	}
	spec := scenario.Spec{Mesh: m, Seed: *sf.seed}
	if *sf.cluster > 0 {
		spec.Faults = scenario.FaultSpec{
			Inject: scenario.Component{Name: "clustered", Params: map[string]any{"clusters": *sf.cluster, "size": *sf.csize}},
			Counts: []int{*sf.cluster * *sf.csize},
		}
	} else {
		spec.Faults = scenario.FaultSpec{Inject: scenario.C("uniform"), Counts: []int{*sf.faults}}
	}
	return scenario.New(spec)
}

// materialize builds the mesh of a scenario spec, injects its static faults
// and returns the mesh together with the random stream used (so callers can
// keep drawing from it, exactly as the standalone binaries did).
func materialize(sc *scenario.Scenario) (*mesh.Mesh, *rng.Rand) {
	spec := sc.Spec()
	m := spec.Mesh.New()
	r := rng.New(spec.Seed)
	n := 0
	if len(spec.Faults.Counts) > 0 {
		n = spec.Faults.Counts[0]
	}
	inj, err := spec.Faults.Injector(n)
	if err != nil {
		panic(err) // validated by scenario.New
	}
	inj.Inject(m, r)
	return m, r
}
