package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"mccmesh/internal/block"
	"mccmesh/internal/core"
	"mccmesh/internal/grid"
	"mccmesh/internal/viz"
)

// cmdViz renders a fault configuration, its MCC labelling and (optionally) a
// routed path as ASCII art, slice by slice (the old mccviz).
func cmdViz(args []string) int {
	fs := flag.NewFlagSet("mcc viz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	setup := addSetupFlags(fs, "12x12", 10)
	var (
		route  = fs.String("route", "", "optional route request sx,sy,sz:dx,dy,dz")
		blocks = fs.Bool("blocks", false, "overlay the rectangular-faulty-block baseline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sc, err := setup.scenario("route", "blocks")
	if err != nil {
		return fail("viz", err)
	}
	if *setup.dump {
		return dumpSpec(sc)
	}
	m, _ := materialize(sc)
	model := core.NewModel(m)

	ov := viz.Overlay{}
	if *blocks {
		ov.Blocks = model.Blocks(block.BoundingBox)
	}
	orient := grid.PositiveOrientation
	if *route != "" {
		s, d, err := parseRoute(*route)
		if err != nil {
			return fail("viz", err)
		}
		orient = grid.OrientationOf(s, d)
		ov.Source, ov.Destination = &s, &d
		if tr, err := model.Route(s, d); err == nil && tr.Succeeded() {
			ov.Path = tr.Path
			fmt.Fprintf(stdout, "routed %v -> %v in %d hops\n\n", s, d, tr.Hops())
		} else {
			fmt.Fprintf(stdout, "no minimal path from %v to %v under the MCC model\n\n", s, d)
		}
	}
	l := model.Labeling(orient)
	fmt.Fprint(stdout, viz.Slices(l, ov))
	fmt.Fprintln(stdout, viz.Legend())
	sum := model.Summarize(orient)
	fmt.Fprintf(stdout, "faults=%d regions=%d absorbed(MCC)=%d absorbed(RFB)=%d\n",
		sum.Faults, sum.Regions, sum.AbsorbedHealthy, sum.RFBAbsorbed)
	return 0
}

// parseRoute parses "sx,sy,sz:dx,dy,dz" (the z coordinates optional in 2-D).
func parseRoute(s string) (grid.Point, grid.Point, error) {
	halves := strings.Split(s, ":")
	if len(halves) != 2 {
		return grid.Point{}, grid.Point{}, fmt.Errorf("invalid -route %q (want sx,sy,sz:dx,dy,dz)", s)
	}
	parse := func(h string) (grid.Point, error) {
		parts := strings.Split(h, ",")
		if len(parts) != 2 && len(parts) != 3 {
			return grid.Point{}, fmt.Errorf("invalid coordinate %q", h)
		}
		var vals [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return grid.Point{}, fmt.Errorf("invalid coordinate %q", h)
			}
			vals[i] = v
		}
		return grid.Point{X: vals[0], Y: vals[1], Z: vals[2]}, nil
	}
	sPt, err := parse(halves[0])
	if err != nil {
		return grid.Point{}, grid.Point{}, err
	}
	dPt, err := parse(halves[1])
	if err != nil {
		return grid.Point{}, grid.Point{}, err
	}
	return sPt, dPt, nil
}
