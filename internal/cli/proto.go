package cli

import (
	"flag"
	"fmt"

	"mccmesh/internal/grid"
	"mccmesh/internal/labeling"
	"mccmesh/internal/protocol"
	"mccmesh/internal/region"
)

// cmdProto runs the distributed protocols of the information model over the
// discrete-event simulator and reports their message costs (the old
// mccproto): the labelling exchange, the identification and boundary
// construction, the feasibility detection and the hop-by-hop routing.
func cmdProto(args []string) int {
	fs := flag.NewFlagSet("mcc proto", flag.ContinueOnError)
	fs.SetOutput(stderr)
	setup := addSetupFlags(fs, "10x10x10", 40)
	pairs := fs.Int("pairs", 3, "number of routing requests to simulate")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sc, err := setup.scenario("pairs")
	if err != nil {
		return fail("proto", err)
	}
	if *setup.dump {
		return dumpSpec(sc)
	}
	m, r := materialize(sc)
	orient := grid.PositiveOrientation

	lr := protocol.RunLabeling(m, orient)
	fmt.Fprintf(stdout, "distributed labelling : %d label messages, settled at t=%d\n",
		lr.Stats.ByKind[protocol.KindLabel], lr.Stats.FinalTime)

	lab := labeling.Compute(m, orient)
	cs := region.FindMCCs(lab)
	info := protocol.RunInformationModel(m, lab, cs)
	fmt.Fprintf(stdout, "information model     : %d MCCs, %d identify messages, %d boundary messages, records on %d nodes\n",
		cs.Len(), info.IdentifyMessages, info.BoundaryMessages, len(info.Records))

	routed := 0
	for routed < *pairs {
		s := m.Point(r.Intn(m.NodeCount()))
		d := m.Point(r.Intn(m.NodeCount()))
		if grid.Manhattan(s, d) < m.Dims().X || m.IsFaulty(s) || m.IsFaulty(d) {
			continue
		}
		pairLab := labeling.Compute(m, grid.OrientationOf(s, d))
		if pairLab.Unsafe(s) || pairLab.Unsafe(d) {
			continue
		}
		routed++
		var det *protocol.DetectionResult
		if m.Is2D() {
			det = protocol.RunDetection2D(m, pairLab, s, d)
		} else {
			det = protocol.RunDetection3D(m, pairLab, s, d)
		}
		fmt.Fprintf(stdout, "pair %d %v -> %v: detection feasible=%v (%d forward + %d reply hops)\n",
			routed, s, d, det.Feasible, det.ForwardHops, det.ReplyHops)
		if !det.Feasible {
			continue
		}
		pairCS := region.FindMCCs(pairLab)
		pairInfo := protocol.RunInformationModel(m, pairLab, pairCS)
		res := protocol.RunRouting(m, pairLab, pairCS, pairInfo.Records, s, d)
		fmt.Fprintf(stdout, "        routing: delivered=%v minimal=%v in %d hops\n", res.Delivered, res.Minimal, res.Hops)
	}
	return 0
}
