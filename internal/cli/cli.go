// Package cli implements the `mcc` command line: one binary, one scenario
// spec format, subcommands for every workflow that used to be a separate
// binary. Every subcommand can load a declarative scenario spec (-spec
// file.json) and emit one (-dump-spec), so any run is reproducible from a
// checked-in JSON file.
//
//	mcc run    — run a scenario (traffic sweep or any e1..e7 measure)
//	mcc bench  — the evaluation tables E1–E7 (mccbench)
//	mcc sim    — one routing scenario end to end (mccsim)
//	mcc proto  — message costs of the distributed protocols (mccproto)
//	mcc viz    — ASCII rendering of fault configurations (mccviz)
//	mcc list   — registered patterns, models, injectors and measures
//	mcc serve  — scenario-execution daemon (HTTP jobs API, result cache)
//	mcc submit — send a spec to a daemon, stream progress, print the report
//	mcc jobs   — list a daemon's jobs
//
// The old binaries (mccbench, mccsim, mccproto, mcctraffic, mccviz) were
// two-line shims over this package for one release and have been removed.
package cli

import (
	"fmt"
	"io"
	"os"
)

// stdout and stderr are swappable for tests.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

// Main dispatches a full argument vector (without the program name) and
// returns the process exit code.
func Main(args []string) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return cmdRun(rest)
	case "bench":
		return cmdBench(rest)
	case "sim":
		return cmdSim(rest)
	case "proto":
		return cmdProto(rest)
	case "viz":
		return cmdViz(rest)
	case "list":
		return cmdList(rest)
	case "serve":
		return cmdServe(rest)
	case "submit":
		return cmdSubmit(rest)
	case "jobs":
		return cmdJobs(rest)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "mcc: unknown subcommand %q\n\n", cmd)
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `mcc — fault-tolerant mesh routing workbench (ICPP 2005 MCC model)

Usage:
  mcc <subcommand> [flags]

Subcommands:
  run     run a scenario: a traffic sweep or any measure, from flags or -spec
  bench   regenerate the evaluation tables E1..E7
  sim     route one fault configuration end to end, model by model
  proto   message costs of the distributed protocols
  viz     render a fault configuration (and a route) as ASCII art
  list    list registered patterns, models, fault injectors and measures
  serve   run the scenario-execution daemon (HTTP API over the spec format)
  submit  send a spec to a running daemon and print its report
  jobs    list a running daemon's jobs

Every subcommand accepts -spec file.json to load a declarative scenario spec
("-" reads stdin) and -dump-spec to print the equivalent spec instead of
running. Run 'mcc <subcommand> -h' for flags.
`)
}

// fail prints a subcommand-scoped error and returns the exit code.
func fail(sub string, err error) int {
	fmt.Fprintf(stderr, "mcc %s: %v\n", sub, err)
	return 2
}
