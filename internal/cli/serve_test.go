package cli

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mccmesh/internal/scenario"
	"mccmesh/internal/server"
)

// serveTestSpec writes a small spec file and returns its path and spec.
func serveTestSpec(t *testing.T) (string, scenario.Spec) {
	t.Helper()
	spec := scenario.Spec{
		Name:   "cli-serve-test",
		Mesh:   scenario.Cube(5),
		Faults: scenario.FaultSpec{Inject: scenario.C("uniform"), Counts: []int{4}},
		Models: scenario.ComponentsOf("mcc"),
		Workload: scenario.WorkloadSpec{
			Patterns: scenario.ComponentsOf("uniform"),
			Rates:    []float64{0.02},
		},
		Measure: scenario.MeasureSpec{Kind: scenario.MeasureTraffic, Warmup: 5, Window: 30},
		Seed:    3,
		Trials:  2,
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, spec
}

// startDaemon runs an in-process server behind a real listener, as `mcc
// serve` would, for the client subcommands to talk to.
func startDaemon(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{Jobs: 2, DrainTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestSubmitMatchesLocalRun is the client-side parity gate: `mcc submit`
// prints the same bytes as `mcc run -spec` for the same spec, in both text
// and CSV form, and reports the cache status on stderr.
func TestSubmitMatchesLocalRun(t *testing.T) {
	addr := startDaemon(t)
	path, _ := serveTestSpec(t)

	code, local, errOut := capture(t, "run", "-spec", path)
	if code != 0 {
		t.Fatalf("run: %s", errOut)
	}
	code, served, errOut := capture(t, "submit", "-addr", addr, path)
	if code != 0 {
		t.Fatalf("submit: %s", errOut)
	}
	if served != local {
		t.Errorf("submit output differs from run:\n--- run\n%s\n--- submit\n%s", local, served)
	}
	if !strings.Contains(errOut, "cache miss") {
		t.Errorf("first submit stderr = %q, want cache miss", errOut)
	}

	code, served2, errOut := capture(t, "submit", "-addr", addr, path)
	if code != 0 {
		t.Fatalf("second submit: %s", errOut)
	}
	if served2 != local {
		t.Error("cached submit output differs from run")
	}
	if !strings.Contains(errOut, "cache hit") {
		t.Errorf("second submit stderr = %q, want cache hit", errOut)
	}

	code, localCSV, _ := capture(t, "run", "-spec", path, "-csv")
	if code != 0 {
		t.Fatal("run -csv failed")
	}
	code, servedCSV, errOut := capture(t, "submit", "-addr", addr, "-csv", path)
	if code != 0 {
		t.Fatalf("submit -csv: %s", errOut)
	}
	if servedCSV != localCSV {
		t.Errorf("submit -csv differs from run -csv:\n--- run\n%s\n--- submit\n%s", localCSV, servedCSV)
	}
}

func TestSubmitNoWaitPrintsJobID(t *testing.T) {
	addr := startDaemon(t)
	path, _ := serveTestSpec(t)
	code, out, errOut := capture(t, "submit", "-addr", addr, "-wait=false", path)
	if code != 0 {
		t.Fatalf("submit -wait=false: %s", errOut)
	}
	if !strings.HasPrefix(out, "j") {
		t.Errorf("stdout = %q, want a job id", out)
	}
}

func TestSubmitStreamRendersProgress(t *testing.T) {
	addr := startDaemon(t)
	path, _ := serveTestSpec(t)
	code, _, errOut := capture(t, "submit", "-addr", addr, "-stream", path)
	if code != 0 {
		t.Fatalf("submit -stream: %s", errOut)
	}
	if !strings.Contains(errOut, "[1/1]") {
		t.Errorf("stream stderr = %q, want progress lines", errOut)
	}
}

func TestJobsListsSubmissions(t *testing.T) {
	addr := startDaemon(t)
	path, spec := serveTestSpec(t)
	if code, _, errOut := capture(t, "submit", "-addr", addr, path); code != 0 {
		t.Fatalf("submit: %s", errOut)
	}
	code, out, errOut := capture(t, "jobs", "-addr", addr)
	if code != 0 {
		t.Fatalf("jobs: %s", errOut)
	}
	for _, want := range []string{"j0001", spec.Name, "done"} {
		if !strings.Contains(out, want) {
			t.Errorf("jobs output missing %q:\n%s", want, out)
		}
	}
	code, out, errOut = capture(t, "jobs", "-addr", addr, "-stats")
	if code != 0 {
		t.Fatalf("jobs -stats: %s", errOut)
	}
	if !strings.Contains(out, "server.jobs_submitted") {
		t.Errorf("jobs -stats output missing counters:\n%s", out)
	}
}

func TestSubmitSurfacesValidationErrors(t *testing.T) {
	addr := startDaemon(t)
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"mesh": {"x": 5, "y": 5, "z": 5}, "model": ["nope"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := capture(t, "submit", "-addr", addr, path)
	if code == 0 {
		t.Fatal("submit of an invalid spec succeeded")
	}
	if !strings.Contains(errOut, "nope") {
		t.Errorf("stderr = %q, want the server's validation error", errOut)
	}
}

func TestSubmitUnreachableServer(t *testing.T) {
	path, _ := serveTestSpec(t)
	code, _, errOut := capture(t, "submit", "-addr", "127.0.0.1:1", path)
	if code == 0 {
		t.Fatal("submit to an unreachable server succeeded")
	}
	if !strings.Contains(errOut, "mcc submit:") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestListSpecPrintsDigest(t *testing.T) {
	path, spec := serveTestSpec(t)
	code, out, errOut := capture(t, "list", "-spec", path)
	if code != 0 {
		t.Fatalf("list -spec: %s", errOut)
	}
	if !strings.Contains(out, spec.Digest()) {
		t.Errorf("list -spec output missing the digest:\n%s", out)
	}
	if !strings.Contains(out, spec.TopoKey()) {
		t.Errorf("list -spec output missing the topo key:\n%s", out)
	}
	if !strings.Contains(out, "cli-serve-test") || !strings.Contains(out, "5x5x5") {
		t.Errorf("list -spec output missing headline fields:\n%s", out)
	}
}
