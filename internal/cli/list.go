package cli

import (
	"flag"
	"fmt"

	"mccmesh/internal/fault"
	"mccmesh/internal/registry"
	"mccmesh/internal/scenario"
	"mccmesh/internal/traffic"
)

// cmdList prints every registered component family — traffic patterns,
// information models, fault injectors and measures — with docs, aliases and
// parameter schemas, so spec authors never have to read source to discover a
// knob.
func cmdList(args []string) int {
	fs := flag.NewFlagSet("mcc list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	printFamily(traffic.Patterns, "workload.patterns")
	printFamily(traffic.Models, "model")
	printFamily(fault.Injectors, "faults.inject")
	printFamily(scenario.Measures, "measure.kind")
	return 0
}

// printFamily renders one registry with its spec-file location.
func printFamily[T any](r *registry.Registry[T], specField string) {
	fmt.Fprintf(stdout, "%ss (spec field %q):\n", r.Family(), specField)
	for _, e := range r.Entries() {
		alias := ""
		if len(e.Aliases) > 0 {
			alias = fmt.Sprintf(" (alias: %v)", e.Aliases)
		}
		fmt.Fprintf(stdout, "  %-12s %s%s\n", e.Name, e.Doc, alias)
		for _, p := range e.Params {
			def := ""
			if p.Default != nil {
				def = fmt.Sprintf(" (default %v)", p.Default)
			}
			fmt.Fprintf(stdout, "    · %s <%s>: %s%s\n", p.Name, p.Kind, p.Doc, def)
		}
	}
	fmt.Fprintln(stdout)
}
