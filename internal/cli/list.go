package cli

import (
	"flag"
	"fmt"

	"mccmesh/internal/fault"
	"mccmesh/internal/registry"
	"mccmesh/internal/scenario"
	"mccmesh/internal/traffic"
)

// cmdList prints every registered component family — traffic patterns,
// information models, fault injectors and measures — with docs, aliases and
// parameter schemas, so spec authors never have to read source to discover a
// knob. With -spec it instead describes one spec file: its identity digest
// (the `mcc serve` cache key), topology key and measure.
func cmdList(args []string) int {
	fs := flag.NewFlagSet("mcc list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "describe this spec file (digest, topology key, measure) instead of the registries")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specPath != "" {
		return listSpec(*specPath)
	}
	printFamily(traffic.Patterns, "workload.patterns")
	printFamily(traffic.Models, "model")
	printFamily(fault.Injectors, "faults.inject")
	printFamily(scenario.Measures, "measure.kind")
	return 0
}

// listSpec prints one spec file's identity: the canonical digest that keys
// the `mcc serve` result cache (and tags every submitted job), the topology
// key that selects its shared-topology prototype, and the headline fields.
func listSpec(path string) int {
	sc, err := loadSpec(path)
	if err != nil {
		return fail("list", err)
	}
	spec := sc.Spec()
	name := spec.Name
	if name == "" {
		name = "-"
	}
	fmt.Fprintf(stdout, "spec:    %s\n", path)
	fmt.Fprintf(stdout, "name:    %s\n", name)
	fmt.Fprintf(stdout, "digest:  %s\n", sc.Digest())
	fmt.Fprintf(stdout, "topo:    %s\n", spec.TopoKey())
	fmt.Fprintf(stdout, "measure: %s\n", spec.Measure.Kind)
	fmt.Fprintf(stdout, "mesh:    %s\n", spec.Mesh.New().Dims())
	fmt.Fprintf(stdout, "trials:  %d (seed %d)\n", spec.Trials, spec.Seed)
	// The resolved execution block (digest-excluded): legacy top-level
	// workers/timeout fields fold into it, so this line shows what actually
	// runs regardless of which spelling the file used.
	fmt.Fprintf(stdout, "exec:    workers=%d shards=%d timeout=%gs\n",
		spec.WorkerCount(), spec.ShardCount(), spec.TimeoutSeconds())
	return 0
}

// printFamily renders one registry with its spec-file location.
func printFamily[T any](r *registry.Registry[T], specField string) {
	fmt.Fprintf(stdout, "%ss (spec field %q):\n", r.Family(), specField)
	for _, e := range r.Entries() {
		alias := ""
		if len(e.Aliases) > 0 {
			alias = fmt.Sprintf(" (alias: %v)", e.Aliases)
		}
		fmt.Fprintf(stdout, "  %-12s %s%s\n", e.Name, e.Doc, alias)
		for _, p := range e.Params {
			def := ""
			if p.Default != nil {
				def = fmt.Sprintf(" (default %v)", p.Default)
			}
			fmt.Fprintf(stdout, "    · %s <%s>: %s%s\n", p.Name, p.Kind, p.Doc, def)
		}
	}
	fmt.Fprintln(stdout)
}
