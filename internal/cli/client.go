package cli

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mccmesh/internal/rng"
	"mccmesh/internal/scenario"
	"mccmesh/internal/server"
	"mccmesh/internal/stats"
)

// defaultAddr is the client-side default, matching `mcc serve`'s listen flag.
const defaultAddr = "127.0.0.1:8322"

// baseURL normalises an -addr value ("host:port" or a full URL) to a URL.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + addr
}

// getJSON fetches a JSON document into v, translating API error payloads.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// apiErr extracts the server's {"error": ...} payload from a failed response.
func apiErr(resp *http.Response) error {
	var payload struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &payload) == nil && payload.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, payload.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

// cmdSubmit sends a spec file to a running `mcc serve` daemon and (by
// default) waits for the result, printing the same bytes `mcc run -spec`
// would print — the cache status goes to stderr, so stdout diffs clean
// against a local run.
func cmdSubmit(args []string) int {
	fs := flag.NewFlagSet("mcc submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", defaultAddr, "server address (host:port or URL)")
		wait    = fs.Bool("wait", true, "wait for the job and print its report (false: print the job id and exit)")
		stream  = fs.Bool("stream", false, "stream per-cell progress events to stderr while waiting")
		csv     = fs.Bool("csv", false, "fetch the report as CSV instead of aligned text")
		tel     = fs.Bool("telemetry", false, "enable telemetry counters for the run (bypasses the result cache)")
		shards  = fs.Int("shards", 0, "override the spec's per-trial shard count before submitting (0 = leave the spec alone); any value gives identical results")
		retries = fs.Int("retries", 0, "resubmissions after a 503 rejection or connection failure (0 = fail fast)")
		backoff = fs.Duration("backoff", 500*time.Millisecond, "initial retry delay, doubled per attempt up to 60s, with deterministic jitter; the server's Retry-After hint raises it")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return fail("submit", fmt.Errorf("want exactly one spec file argument (- = stdin)"))
	}
	base := baseURL(*addr)

	var spec io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return fail("submit", err)
		}
		defer f.Close()
		spec = f
	}
	// The spec is buffered so a retry can resend the same bytes (and so the
	// backoff jitter can be seeded from them).
	specBytes, err := io.ReadAll(spec)
	if err != nil {
		return fail("submit", err)
	}
	if *shards != 0 {
		// The override rides inside the spec document itself (its exec block),
		// so the server needs no side channel — and the digest is unchanged,
		// because exec knobs are excluded from a spec's identity.
		specBytes, err = specWithShards(specBytes, *shards)
		if err != nil {
			return fail("submit", err)
		}
	}
	submitURL := base + "/v1/jobs"
	if *tel {
		submitURL += "?telemetry=1"
	}
	resp, err := submitWithRetry(submitURL, specBytes, *retries, *backoff)
	if err != nil {
		return fail("submit", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		err := apiErr(resp)
		resp.Body.Close()
		return fail("submit", err)
	}
	var info server.JobInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	cacheState := resp.Header.Get("X-Cache")
	resp.Body.Close()
	if err != nil {
		return fail("submit", err)
	}
	fmt.Fprintf(stderr, "mcc submit: job %s (%s) digest %s cache %s\n",
		info.ID, info.Status, info.Digest[:12], cacheState)
	if !*wait {
		fmt.Fprintln(stdout, info.ID)
		return 0
	}

	// Following the event stream doubles as the wait: the server holds the
	// connection open until the job is terminal.
	if err := followEvents(base, info.ID, *stream); err != nil {
		return fail("submit", err)
	}
	final, err := fetchReportText(base, info.ID, *csv)
	if err != nil {
		return fail("submit", err)
	}
	fmt.Fprint(stdout, final)
	return 0
}

// specWithShards re-serialises a spec document with its exec shard count set
// to n — validating it locally in passing, exactly as `mcc run -spec -shards`
// would.
func specWithShards(specBytes []byte, n int) ([]byte, error) {
	sc, err := scenario.Load(bytes.NewReader(specBytes))
	if err != nil {
		return nil, err
	}
	spec := sc.Spec()
	spec.SetShards(n)
	sc, err = scenario.New(spec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := sc.WriteSpec(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// submitWithRetry posts a spec, resubmitting after 503 rejections and
// connection failures with capped exponential backoff. Retrying is safe:
// submission is idempotent by spec digest, so a duplicate of an attempt that
// did land is answered straight from the result cache. The jitter is seeded
// deterministically from the spec bytes — a fleet of clients submitting
// different specs spreads out, while re-running one invocation reproduces its
// timing — and the server's Retry-After hint, when present, becomes the floor
// of the computed delay. Retried attempts carry an X-Mcc-Retry header so the
// server's retries_observed counter sees them.
func submitWithRetry(url string, spec []byte, retries int, backoff time.Duration) (*http.Response, error) {
	jitter := rng.New(fnvSeed(spec))
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest("POST", url, bytes.NewReader(spec))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if attempt > 0 {
			req.Header.Set("X-Mcc-Retry", strconv.Itoa(attempt))
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		if attempt == retries {
			return resp, err // out of attempts: surface the last outcome as is
		}
		var retryAfter time.Duration
		if err == nil {
			if n, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && n > 0 {
				retryAfter = time.Duration(n) * time.Second
			}
			err = apiErr(resp)
			resp.Body.Close()
		}
		delay := retryDelay(attempt, backoff, retryAfter, jitter)
		fmt.Fprintf(stderr, "mcc submit: attempt %d/%d failed (%v), retrying in %s\n",
			attempt+1, retries+1, err, delay.Round(time.Millisecond))
		time.Sleep(delay)
	}
}

// retryDelay computes one backoff step: the base doubled per attempt, capped
// at 60s, jittered into [0.5x, 1.5x), and never below the server's hint.
func retryDelay(attempt int, base time.Duration, retryAfter time.Duration, jitter *rng.Rand) time.Duration {
	const ceiling = 60 * time.Second
	d := base << uint(attempt)
	if d <= 0 || d > ceiling {
		d = ceiling
	}
	d = time.Duration(float64(d) * (0.5 + jitter.Float64()))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// fnvSeed hashes the spec bytes into the jitter seed.
func fnvSeed(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b) //nolint:errcheck // fnv.Write never fails
	return h.Sum64()
}

// followEvents reads the job's NDJSON event stream to EOF (the job's end),
// optionally rendering progress lines in the `mcc run -progress` format.
func followEvents(base, id string, render bool) error {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if !render {
			continue
		}
		var ev server.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad event line: %w", err)
		}
		switch {
		case ev.Progress:
			// Per-trial telemetry detail; skip in the cell-level view.
		case ev.Done:
			fmt.Fprintf(stderr, "[%d/%d] %s: %s\n", ev.Cell+1, ev.Total, ev.Label, strings.Join(ev.Row, "  "))
		default:
			fmt.Fprintf(stderr, "[%d/%d] %s ...\n", ev.Cell+1, ev.Total, ev.Label)
		}
	}
	return sc.Err()
}

// fetchReportText retrieves the terminal job's rendered report — the exact
// bytes a local `mcc run -spec` (with or without -csv) would print.
func fetchReportText(base, id string, csv bool) (string, error) {
	format := "text"
	if csv {
		format = "csv"
	}
	resp, err := http.Get(base + "/v1/jobs/" + id + "/report?format=" + format)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A failed or cancelled job has no (complete) report: surface its
		// recorded error instead of the transport-level message.
		var info server.JobInfo
		if err := getJSON(base+"/v1/jobs/"+id, &info); err == nil && info.Error != "" {
			return "", fmt.Errorf("job %s %s: %s", id, info.Status, info.Error)
		}
		return "", apiErr(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// cmdJobs lists a daemon's jobs as a table.
func cmdJobs(args []string) int {
	fs := flag.NewFlagSet("mcc jobs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", defaultAddr, "server address (host:port or URL)")
	showStats := fs.Bool("stats", false, "also print the server's cache/topology/counter statistics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := baseURL(*addr)
	var payload struct {
		Jobs []server.JobInfo `json:"jobs"`
	}
	if err := getJSON(base+"/v1/jobs", &payload); err != nil {
		return fail("jobs", err)
	}
	t := &stats.Table{
		Title:   "Jobs",
		Columns: []string{"id", "name", "status", "cache", "digest", "events", "error"},
	}
	for _, j := range payload.Jobs {
		cache := "-"
		if j.Cached {
			cache = "hit"
		}
		name := j.Name
		if name == "" {
			name = "-"
		}
		errText := j.Error
		if errText == "" {
			errText = "-"
		}
		t.AddRow(j.ID, name, string(j.Status), cache, j.Digest[:12], fmt.Sprint(j.Events), errText)
	}
	fmt.Fprintln(stdout, t.Render())
	if *showStats {
		var st server.Stats
		if err := getJSON(base+"/v1/stats", &st); err != nil {
			return fail("jobs", err)
		}
		out, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return fail("jobs", err)
		}
		fmt.Fprintln(stdout, string(out))
	}
	return 0
}
