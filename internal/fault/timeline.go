package fault

import (
	"fmt"
	"math"
	"sort"

	"mccmesh/internal/rng"
)

// Timeline describes a stochastic fault-churn process: failure groups arrive
// with exponential inter-arrival gaps (mean MTTF ticks), each group takes
// down whatever its Shape injector places — a single node ("point"), a
// region-shaped cluster ("region"), or any other registered injector — and
// each group is repaired wholesale after an exponential delay (mean MTTR
// ticks). Fixed entries add deterministic fail/repair pairs on top of (or
// instead of) the stochastic stream.
//
// Times are simulated ticks (int64, the width of simnet.Time; this package
// stays independent of the simulator). A Timeline is pure description:
// Program materialises the deterministic event stream for one trial, and the
// traffic engine schedules the steps via simnet.At and executes the
// placements and repairs against the live mesh.
type Timeline struct {
	// Start is the tick of the first possible stochastic arrival; Until is the
	// exclusive horizon — steps (failures and repairs alike) at or beyond it
	// are dropped, so a group whose repair would land past the horizon simply
	// stays down for the rest of the run.
	Start, Until int64
	// MTTF is the mean inter-arrival gap of failure groups in ticks. Zero
	// disables the stochastic stream (only Fixed entries fire).
	MTTF float64
	// MTTR is the mean delay between a group's failure and its repair. Zero
	// means groups are never repaired (pure decay, the pre-churn behaviour).
	MTTR float64
	// Shape places one failure group. Typical shapes are the registry's
	// "point" (one random node) and "region" (a cluster of adjacent nodes);
	// any Injector works.
	Shape Injector
	// Fixed lists deterministic churn entries merged into the stream.
	Fixed []FixedEvent
}

// FixedEvent is one deterministic churn entry: Inject fires at tick At, and
// the nodes it placed are repaired RepairAfter ticks later (0 = never).
type FixedEvent struct {
	At          int64
	Inject      Injector
	RepairAfter int64
}

// Step is one materialised churn event. Failure steps (Repair false) run
// Inject and record the placed nodes under Group; repair steps restore
// exactly the nodes their group placed.
type Step struct {
	At     int64
	Repair bool
	// Group pairs a failure with its repair; groups are numbered in
	// generation order (stochastic arrivals first, then fixed entries).
	Group int
	// Inject places the group's faults; nil on repair steps.
	Inject Injector
}

// Validate checks the timeline's static description.
func (tl *Timeline) Validate() error {
	if tl.Start < 0 {
		return fmt.Errorf("fault: timeline start %d is negative", tl.Start)
	}
	if tl.Until <= tl.Start {
		return fmt.Errorf("fault: timeline until %d must exceed start %d", tl.Until, tl.Start)
	}
	if tl.MTTF < 0 || tl.MTTR < 0 {
		return fmt.Errorf("fault: timeline mttf/mttr must be non-negative (got %v/%v)", tl.MTTF, tl.MTTR)
	}
	if tl.MTTF > 0 && tl.Shape == nil {
		return fmt.Errorf("fault: timeline with mttf %v needs a failure shape", tl.MTTF)
	}
	if tl.MTTF == 0 && len(tl.Fixed) == 0 {
		return fmt.Errorf("fault: timeline is empty (mttf 0 and no fixed entries)")
	}
	for i, fx := range tl.Fixed {
		if fx.At < 0 {
			return fmt.Errorf("fault: timeline fixed[%d] time %d is negative", i, fx.At)
		}
		if fx.RepairAfter < 0 {
			return fmt.Errorf("fault: timeline fixed[%d] repairafter %d is negative", i, fx.RepairAfter)
		}
		if fx.Inject == nil {
			return fmt.Errorf("fault: timeline fixed[%d] has no injector", i)
		}
	}
	return nil
}

// expGap draws an exponential inter-event gap with the given mean, floored at
// one tick so same-tick self-succession cannot occur. The draw consumes
// exactly one value of r, keeping the stream layout stable.
func expGap(r *rng.Rand, mean float64) int64 {
	u := r.Float64() // in [0, 1), so Log1p(-u) is finite
	gap := int64(-mean * math.Log1p(-u))
	if gap < 1 {
		gap = 1
	}
	return gap
}

// Program materialises the timeline into a deterministic step stream: every
// arrival gap and repair delay is drawn from r in a fixed order, so the same
// (timeline, seed) pair yields the same steps wherever the trial runs. Steps
// are sorted by time, ties broken by generation order; failures always
// precede their own repair (gaps and delays are at least one tick). Steps at
// or beyond Until are dropped.
func (tl *Timeline) Program(r *rng.Rand) []Step {
	type seqStep struct {
		Step
		seq int
	}
	var steps []seqStep
	seq := 0
	add := func(s Step) {
		if s.At >= tl.Until {
			return
		}
		steps = append(steps, seqStep{Step: s, seq: seq})
		seq++
	}
	group := 0
	if tl.MTTF > 0 {
		// Each arrival draws its gap then its repair delay, interleaved, so
		// inserting or dropping one group never shifts another group's draws
		// beyond its own.
		for t := tl.Start; ; {
			t += expGap(r, tl.MTTF)
			if t >= tl.Until {
				break
			}
			add(Step{At: t, Group: group, Inject: tl.Shape})
			if tl.MTTR > 0 {
				add(Step{At: t + expGap(r, tl.MTTR), Repair: true, Group: group})
			}
			group++
		}
	}
	for _, fx := range tl.Fixed {
		add(Step{At: fx.At, Group: group, Inject: fx.Inject})
		if fx.RepairAfter > 0 {
			add(Step{At: fx.At + fx.RepairAfter, Repair: true, Group: group})
		}
		group++
	}
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].At != steps[j].At {
			return steps[i].At < steps[j].At
		}
		return steps[i].seq < steps[j].seq
	})
	out := make([]Step, len(steps))
	for i, s := range steps {
		out[i] = s.Step
	}
	return out
}

// Groups returns the number of failure groups the program can contain, an
// upper bound used to presize the group table.
func Groups(steps []Step) int {
	max := 0
	for _, s := range steps {
		if s.Group+1 > max {
			max = s.Group + 1
		}
	}
	return max
}
