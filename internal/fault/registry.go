package fault

import (
	"fmt"

	"mccmesh/internal/grid"
	"mccmesh/internal/registry"
)

// Ctor builds an injector from decoded spec parameters. The conventional
// "count" parameter is the total number of faults to place; workload-specific
// parameters refine how they are placed.
type Ctor func(args registry.Args) (Injector, error)

// Injectors is the fault-workload registry. Built-ins register below;
// third-party injectors register the same way:
//
//	fault.Injectors.Register(registry.Entry[fault.Ctor]{Name: "mine", New: ...})
var Injectors = registry.New[Ctor]("fault injector")

func init() {
	Injectors.Register(registry.Entry[Ctor]{
		Name:   "uniform",
		Doc:    "count distinct uniformly random node faults",
		Params: []registry.Param{{Name: "count", Kind: registry.Int, Doc: "number of faults", Default: 0}},
		New: func(args registry.Args) (Injector, error) {
			count, err := args.Int("count", 0)
			if err != nil {
				return nil, err
			}
			if count < 0 {
				return nil, fmt.Errorf("parameter %q: %d is negative", "count", count)
			}
			return Uniform{Count: count}, nil
		},
	})
	Injectors.Register(registry.Entry[Ctor]{
		Name: "clustered",
		Doc:  "clusters of adjacent faults (spatially correlated failures)",
		Params: []registry.Param{
			{Name: "count", Kind: registry.Int, Doc: "total faults; clusters = ceil(count/size) unless given", Default: 0},
			{Name: "size", Kind: registry.Int, Doc: "faults per cluster", Default: 5},
			{Name: "clusters", Kind: registry.Int, Doc: "cluster count (overrides count)", Default: "derived"},
		},
		New: func(args registry.Args) (Injector, error) {
			size, err := args.Int("size", 5)
			if err != nil {
				return nil, err
			}
			if size <= 0 {
				return nil, fmt.Errorf("parameter %q: %d must be positive", "size", size)
			}
			count, err := args.Int("count", 0)
			if err != nil {
				return nil, err
			}
			clusters, err := args.Int("clusters", (count+size-1)/size)
			if err != nil {
				return nil, err
			}
			if clusters < 0 {
				return nil, fmt.Errorf("parameter %q: %d is negative", "clusters", clusters)
			}
			return Clustered{Clusters: clusters, Size: size}, nil
		},
	})
	Injectors.Register(registry.Entry[Ctor]{
		Name:   "rate",
		Doc:    "each node fails independently with probability p",
		Params: []registry.Param{{Name: "p", Kind: registry.Float, Doc: "per-node fault probability", Default: 0}},
		New: func(args registry.Args) (Injector, error) {
			p, err := args.Float("p", 0)
			if err != nil {
				return nil, err
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("parameter %q: %v is not in [0,1]", "p", p)
			}
			return Rate{P: p}, nil
		},
	})
	Injectors.Register(registry.Entry[Ctor]{
		Name:   "links",
		Doc:    "count random link faults (both endpoints marked faulty)",
		Params: []registry.Param{{Name: "count", Kind: registry.Int, Doc: "number of link faults", Default: 0}},
		New: func(args registry.Args) (Injector, error) {
			count, err := args.Int("count", 0)
			if err != nil {
				return nil, err
			}
			if count < 0 {
				return nil, fmt.Errorf("parameter %q: %d is negative", "count", count)
			}
			return Links{Count: count}, nil
		},
	})
	Injectors.Register(registry.Entry[Ctor]{
		Name:   "point",
		Doc:    "a single uniformly random node fault (the default churn-timeline shape)",
		Params: nil,
		New: func(args registry.Args) (Injector, error) {
			return Uniform{Count: 1}, nil
		},
	})
	Injectors.Register(registry.Entry[Ctor]{
		Name:   "region",
		Doc:    "one region-shaped cluster of size adjacent node faults (churn timelines)",
		Params: []registry.Param{{Name: "size", Kind: registry.Int, Doc: "nodes per cluster", Default: 3}},
		New: func(args registry.Args) (Injector, error) {
			size, err := args.Int("size", 3)
			if err != nil {
				return nil, err
			}
			if size <= 0 {
				return nil, fmt.Errorf("parameter %q: %d must be positive", "size", size)
			}
			return Clustered{Clusters: 1, Size: size}, nil
		},
	})
	Injectors.Register(registry.Entry[Ctor]{
		Name: "block",
		Doc:  "every node inside an axis-aligned box fails",
		Params: []registry.Param{
			{Name: "min", Kind: registry.Point, Doc: "box corner [x, y, z]"},
			{Name: "max", Kind: registry.Point, Doc: "opposite box corner [x, y, z]"},
		},
		New: func(args registry.Args) (Injector, error) {
			lo, err := args.PointAt("min", grid.Point{})
			if err != nil {
				return nil, err
			}
			hi, err := args.PointAt("max", lo)
			if err != nil {
				return nil, err
			}
			return Block{Box: grid.BoxOf(lo, hi)}, nil
		},
	})
}

// Build resolves an injector by name, validates its parameters against the
// registered schema and constructs it.
func Build(name string, args registry.Args) (Injector, error) {
	e, err := Injectors.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	if err := e.CheckArgs(args); err != nil {
		return nil, fmt.Errorf("fault: injector %q: %w", e.Name, err)
	}
	return e.New(args)
}

// Names lists the registered injector names accepted by Build.
func Names() []string { return Injectors.Names() }
