// Package fault provides the fault-injection workloads used by the
// experiments: uniformly random node faults, clustered faults, solid block
// faults and link faults (mapped to node faults by disabling both endpoints,
// as the paper prescribes).
package fault

import (
	"fmt"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/nodeset"
	"mccmesh/internal/rng"
)

// protectedSet collects the in-bounds protected points into a bitset over m's
// dense node IDs — the one helper behind every injector's Protected option.
// Out-of-bounds points are dropped: they name no node, so nothing needs
// protecting. The nil/empty case costs nothing and Has reports false.
func protectedSet(m *mesh.Mesh, pts []grid.Point) *nodeset.Set {
	return nodeset.FromPoints(m, pts)
}

// Injector mutates a mesh by marking nodes faulty.
type Injector interface {
	// Inject marks nodes of m faulty and returns the points it marked.
	Inject(m *mesh.Mesh, r *rng.Rand) []grid.Point
	// Name identifies the workload in tables and traces.
	Name() string
}

// Uniform injects exactly Count uniformly random distinct node faults,
// optionally keeping a set of protected nodes healthy.
type Uniform struct {
	Count     int
	Protected []grid.Point
}

// Name implements Injector.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%d)", u.Count) }

// Inject implements Injector. On a mesh whose eligible (healthy,
// unprotected) nodes run out — a saturated mesh under a repair-free churn
// timeline, say — it returns the faults it managed to place instead of
// spinning: the attempt bound matches Clustered's and Links's, and the odds
// of hitting it while eligible nodes remain are negligible.
func (u Uniform) Inject(m *mesh.Mesh, r *rng.Rand) []grid.Point {
	protected := protectedSet(m, u.Protected)
	total := m.NodeCount()
	if u.Count < 0 || u.Count > total-protected.Len() {
		panic(fmt.Sprintf("fault: cannot place %d faults in %d eligible nodes", u.Count, total-protected.Len()))
	}
	placed := make([]grid.Point, 0, u.Count)
	for attempt := 0; len(placed) < u.Count && attempt < 64*total; attempt++ {
		idx := r.Intn(total)
		if protected.Has(int32(idx)) || m.FaultyAt(idx) {
			continue
		}
		p := m.Point(idx)
		m.SetFaulty(p, true)
		placed = append(placed, p)
	}
	return placed
}

// Rate injects faults independently at each node with probability P,
// optionally keeping protected nodes healthy.
type Rate struct {
	P         float64
	Protected []grid.Point
}

// Name implements Injector.
func (w Rate) Name() string { return fmt.Sprintf("rate(%.3f)", w.P) }

// Inject implements Injector.
func (w Rate) Inject(m *mesh.Mesh, r *rng.Rand) []grid.Point {
	protected := protectedSet(m, w.Protected)
	var placed []grid.Point
	m.ForEach(func(p grid.Point) {
		if protected.Has(m.ID(p)) || m.IsFaulty(p) {
			return
		}
		if r.Float64() < w.P {
			m.SetFaulty(p, true)
			placed = append(placed, p)
		}
	})
	return placed
}

// Clustered injects Clusters cluster seeds uniformly at random and grows each
// cluster to Size nodes by repeatedly marking a random healthy neighbour of
// the cluster faulty. It models spatially correlated failures (e.g. a failed
// board taking several routers with it).
type Clustered struct {
	Clusters  int
	Size      int
	Protected []grid.Point
}

// Name implements Injector.
func (c Clustered) Name() string { return fmt.Sprintf("clustered(%dx%d)", c.Clusters, c.Size) }

// Inject implements Injector.
func (c Clustered) Inject(m *mesh.Mesh, r *rng.Rand) []grid.Point {
	protected := protectedSet(m, c.Protected)
	var placed []grid.Point
	var scratch []grid.Point
	for i := 0; i < c.Clusters; i++ {
		// Seed.
		var seed grid.Point
		found := false
		for attempt := 0; attempt < 64*m.NodeCount(); attempt++ {
			idx := r.Intn(m.NodeCount())
			if !protected.Has(int32(idx)) && !m.FaultyAt(idx) {
				seed, found = m.Point(idx), true
				break
			}
		}
		if !found {
			break
		}
		m.SetFaulty(seed, true)
		cluster := []grid.Point{seed}
		placed = append(placed, seed)
		for len(cluster) < c.Size {
			// Collect the healthy frontier of the cluster.
			scratch = scratch[:0]
			for _, q := range cluster {
				for _, d := range m.Directions() {
					n, ok := m.Neighbor(q, d)
					if ok && !m.IsFaulty(n) && !protected.Has(m.ID(n)) {
						scratch = append(scratch, n)
					}
				}
			}
			if len(scratch) == 0 {
				break
			}
			pick := scratch[r.Intn(len(scratch))]
			m.SetFaulty(pick, true)
			cluster = append(cluster, pick)
			placed = append(placed, pick)
		}
	}
	return placed
}

// Block marks every node inside Box faulty, clipped to the mesh bounds.
type Block struct {
	Box grid.Box
}

// Name implements Injector.
func (b Block) Name() string { return fmt.Sprintf("block%v", b.Box) }

// Inject implements Injector.
func (b Block) Inject(m *mesh.Mesh, _ *rng.Rand) []grid.Point {
	var placed []grid.Point
	b.Box.ForEach(func(p grid.Point) {
		if m.InBounds(p) && !m.IsFaulty(p) {
			m.SetFaulty(p, true)
			placed = append(placed, p)
		}
	})
	return placed
}

// Links injects Count random link faults. As in the paper, a link fault is
// modelled by disabling both adjacent nodes, so each link fault marks up to
// two nodes faulty.
type Links struct {
	Count     int
	Protected []grid.Point
}

// Name implements Injector.
func (l Links) Name() string { return fmt.Sprintf("links(%d)", l.Count) }

// Inject implements Injector.
func (l Links) Inject(m *mesh.Mesh, r *rng.Rand) []grid.Point {
	protected := protectedSet(m, l.Protected)
	dirs := m.Directions()
	var placed []grid.Point
	for i := 0; i < l.Count; i++ {
		for attempt := 0; ; attempt++ {
			if attempt > 64*m.NodeCount() {
				return placed
			}
			p := m.Point(r.Intn(m.NodeCount()))
			d := dirs[r.Intn(len(dirs))]
			q, ok := m.Neighbor(p, d)
			if !ok || protected.Has(m.ID(p)) || protected.Has(m.ID(q)) {
				continue
			}
			if !m.IsFaulty(p) {
				m.SetFaulty(p, true)
				placed = append(placed, p)
			}
			if !m.IsFaulty(q) {
				m.SetFaulty(q, true)
				placed = append(placed, q)
			}
			break
		}
	}
	return placed
}

// Exact marks exactly the listed nodes faulty; used to reproduce the paper's
// hand-built figures.
type Exact struct {
	Nodes []grid.Point
	Label string
}

// Name implements Injector.
func (e Exact) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return fmt.Sprintf("exact(%d)", len(e.Nodes))
}

// Inject implements Injector.
func (e Exact) Inject(m *mesh.Mesh, _ *rng.Rand) []grid.Point {
	placed := make([]grid.Point, 0, len(e.Nodes))
	for _, p := range e.Nodes {
		if m.InBounds(p) && !m.IsFaulty(p) {
			m.SetFaulty(p, true)
			placed = append(placed, p)
		}
	}
	return placed
}
