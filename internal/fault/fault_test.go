package fault

import (
	"testing"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
	"mccmesh/internal/rng"
)

func TestUniformExactCount(t *testing.T) {
	m := mesh.New3D(8, 8, 8)
	r := rng.New(1)
	placed := Uniform{Count: 25}.Inject(m, r)
	if len(placed) != 25 || m.FaultCount() != 25 {
		t.Fatalf("placed %d faults, mesh has %d, want 25", len(placed), m.FaultCount())
	}
	seen := map[grid.Point]bool{}
	for _, p := range placed {
		if seen[p] {
			t.Fatalf("duplicate fault %v", p)
		}
		seen[p] = true
		if !m.IsFaulty(p) {
			t.Fatalf("placed point %v not faulty", p)
		}
	}
}

func TestUniformRespectsProtected(t *testing.T) {
	m := mesh.New2D(4, 4)
	protect := []grid.Point{{X: 0, Y: 0}, {X: 3, Y: 3}}
	r := rng.New(9)
	Uniform{Count: 14, Protected: protect}.Inject(m, r)
	for _, p := range protect {
		if m.IsFaulty(p) {
			t.Errorf("protected node %v was marked faulty", p)
		}
	}
	if m.FaultCount() != 14 {
		t.Errorf("fault count = %d, want 14", m.FaultCount())
	}
}

func TestUniformPanicsWhenImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when asking for more faults than nodes")
		}
	}()
	Uniform{Count: 10}.Inject(mesh.New2D(3, 3), rng.New(1))
}

func TestRate(t *testing.T) {
	m := mesh.New3D(10, 10, 10)
	r := rng.New(77)
	placed := Rate{P: 0.1}.Inject(m, r)
	if len(placed) != m.FaultCount() {
		t.Fatal("returned faults disagree with the mesh")
	}
	// With 1000 nodes and p=0.1, expect roughly 100 faults; allow wide slack.
	if len(placed) < 50 || len(placed) > 170 {
		t.Errorf("rate injection produced %d faults, far from the expected ~100", len(placed))
	}
}

func TestClustered(t *testing.T) {
	m := mesh.New3D(12, 12, 12)
	r := rng.New(5)
	placed := Clustered{Clusters: 3, Size: 6}.Inject(m, r)
	if len(placed) != 18 || m.FaultCount() != 18 {
		t.Fatalf("clustered injection placed %d faults, want 18", len(placed))
	}
}

func TestBlockInjector(t *testing.T) {
	m := mesh.New3D(6, 6, 6)
	box := grid.Box{Min: grid.Point{X: 1, Y: 1, Z: 1}, Max: grid.Point{X: 2, Y: 3, Z: 2}}
	placed := Block{Box: box}.Inject(m, rng.New(1))
	if len(placed) != box.Volume() {
		t.Fatalf("block injection placed %d faults, want %d", len(placed), box.Volume())
	}
	box.ForEach(func(p grid.Point) {
		if !m.IsFaulty(p) {
			t.Errorf("node %v inside the block is not faulty", p)
		}
	})
}

func TestBlockClipped(t *testing.T) {
	m := mesh.New2D(4, 4)
	box := grid.Box{Min: grid.Point{X: 2, Y: 2}, Max: grid.Point{X: 9, Y: 9}}
	placed := Block{Box: box}.Inject(m, rng.New(1))
	if len(placed) != 4 {
		t.Errorf("clipped block placed %d faults, want 4", len(placed))
	}
}

func TestLinks(t *testing.T) {
	m := mesh.New3D(8, 8, 8)
	placed := Links{Count: 5}.Inject(m, rng.New(3))
	if len(placed) == 0 || len(placed) > 10 {
		t.Errorf("link faults disabled %d nodes, want between 1 and 10", len(placed))
	}
}

func TestExact(t *testing.T) {
	m := mesh.New2D(5, 5)
	pts := []grid.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 9, Y: 9}}
	placed := Exact{Nodes: pts}.Inject(m, rng.New(1))
	if len(placed) != 2 {
		t.Errorf("exact injection placed %d faults, want 2 (one point is out of bounds)", len(placed))
	}
}

func TestNames(t *testing.T) {
	for _, inj := range []Injector{
		Uniform{Count: 3}, Rate{P: 0.5}, Clustered{Clusters: 1, Size: 2},
		Block{}, Links{Count: 1}, Exact{Label: "fig5"},
	} {
		if inj.Name() == "" {
			t.Errorf("%T has empty name", inj)
		}
	}
}

// TestUniformInjectSaturatedMesh: on a mesh with no healthy nodes left — the
// terminal state of a repair-free churn timeline — Uniform must return the
// (empty) set it could place instead of spinning forever inside a simnet
// control callback.
func TestUniformInjectSaturatedMesh(t *testing.T) {
	m := mesh.New2D(3, 3)
	m.ForEach(func(p grid.Point) { m.SetFaulty(p, true) })
	if placed := (Uniform{Count: 1}).Inject(m, rng.New(1)); len(placed) != 0 {
		t.Fatalf("saturated mesh placed %v", placed)
	}
}
