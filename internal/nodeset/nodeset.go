// Package nodeset provides a flat bitset over dense mesh node IDs — the
// index-first replacement for the map[grid.Point]bool sets that used to back
// labelings, fault-region memberships and protected sets. A Set is a plain
// []uint64 with no per-element allocation; membership tests are one shift and
// one mask, and a Set sized to a mesh can be reused across rebuilds with
// Clear.
package nodeset

import (
	"math/bits"

	"mccmesh/internal/grid"
	"mccmesh/internal/mesh"
)

// Set is a bitset over dense node IDs (bit i = node i is a member). The zero
// value is an empty set that reports false for every ID; use New (or Add,
// which grows on demand) to build a populated one.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for ids [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// FromPoints collects the in-bounds points of pts into a set over m's dense
// IDs. Out-of-bounds points are skipped: they name no node, so they cannot be
// members. A nil or empty pts yields an empty set without allocating words.
func FromPoints(m *mesh.Mesh, pts []grid.Point) *Set {
	if len(pts) == 0 {
		return &Set{}
	}
	s := New(m.NodeCount())
	for _, p := range pts {
		if id := m.ID(p); id != mesh.NoNeighbor {
			s.Add(id)
		}
	}
	return s
}

// Has reports whether id is a member. IDs beyond the set's capacity (and the
// mesh.NoNeighbor marker) are not members.
func (s *Set) Has(id int32) bool {
	if s == nil || id < 0 {
		return false
	}
	w := int(id >> 6)
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<uint(id&63)) != 0
}

// Add inserts id, growing the word slice if needed. Negative IDs are ignored.
func (s *Set) Add(id int32) {
	if id < 0 {
		return
	}
	w := int(id >> 6)
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	bit := uint64(1) << uint(id&63)
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.n++
	}
}

// Remove deletes id from the set.
func (s *Set) Remove(id int32) {
	if id < 0 {
		return
	}
	w := int(id >> 6)
	if w >= len(s.words) {
		return
	}
	bit := uint64(1) << uint(id&63)
	if s.words[w]&bit != 0 {
		s.words[w] &^= bit
		s.n--
	}
}

// Len returns the number of members.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Clear empties the set, keeping the backing words for reuse.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.n = 0
}

// ForEach calls fn for every member in increasing ID order.
func (s *Set) ForEach(fn func(id int32)) {
	if s == nil {
		return
	}
	for w, word := range s.words {
		for word != 0 {
			id := int32(w<<6) | int32(bits.TrailingZeros64(word))
			fn(id)
			word &= word - 1
		}
	}
}
