package registry

import (
	"fmt"
	"math"

	"mccmesh/internal/grid"
)

// Args carries the decoded JSON parameters of one component instance. Values
// arrive as encoding/json decodes them (float64 for every number), and the
// typed accessors perform the coercions a spec author expects: an integral
// float is an int, an int is a float.
type Args map[string]any

// Int returns the named parameter as an int, or def when absent. It fails on
// non-numeric values and on numbers with a fractional part.
func (a Args) Int(name string, def int) (int, error) {
	v, ok := a[name]
	if !ok {
		return def, nil
	}
	switch n := v.(type) {
	case int:
		return n, nil
	case float64:
		if n != math.Trunc(n) {
			return 0, fmt.Errorf("parameter %q: %v is not an integer", name, n)
		}
		return int(n), nil
	default:
		return 0, fmt.Errorf("parameter %q: %T is not an integer", name, v)
	}
}

// Float returns the named parameter as a float64, or def when absent.
func (a Args) Float(name string, def float64) (float64, error) {
	v, ok := a[name]
	if !ok {
		return def, nil
	}
	switch n := v.(type) {
	case float64:
		return n, nil
	case int:
		return float64(n), nil
	default:
		return 0, fmt.Errorf("parameter %q: %T is not a number", name, v)
	}
}

// Bool returns the named parameter as a bool, or def when absent.
func (a Args) Bool(name string, def bool) (bool, error) {
	v, ok := a[name]
	if !ok {
		return def, nil
	}
	b, isBool := v.(bool)
	if !isBool {
		return false, fmt.Errorf("parameter %q: %T is not a bool", name, v)
	}
	return b, nil
}

// String returns the named parameter as a string, or def when absent.
func (a Args) String(name string, def string) (string, error) {
	v, ok := a[name]
	if !ok {
		return def, nil
	}
	s, isString := v.(string)
	if !isString {
		return "", fmt.Errorf("parameter %q: %T is not a string", name, v)
	}
	return s, nil
}

// PointAt returns the named parameter as a grid point decoded from a
// [x, y] or [x, y, z] array, or def when absent.
func (a Args) PointAt(name string, def grid.Point) (grid.Point, error) {
	v, ok := a[name]
	if !ok {
		return def, nil
	}
	if p, isPoint := v.(grid.Point); isPoint {
		return p, nil
	}
	arr, isArr := v.([]any)
	if !isArr || len(arr) < 2 || len(arr) > 3 {
		return grid.Point{}, fmt.Errorf("parameter %q: want a [x, y] or [x, y, z] array", name)
	}
	var coords [3]int
	for i, elem := range arr {
		tmp := Args{"c": elem}
		c, err := tmp.Int("c", 0)
		if err != nil {
			return grid.Point{}, fmt.Errorf("parameter %q: element %d is not an integer", name, i)
		}
		coords[i] = c
	}
	return grid.Point{X: coords[0], Y: coords[1], Z: coords[2]}, nil
}

// With returns a copy of a with the named value set; a nil receiver is
// allocated. The receiver is never mutated, so a shared base Args (e.g. a
// spec component's params) can be specialised per cell.
func (a Args) With(name string, v any) Args {
	out := make(Args, len(a)+1)
	for k, val := range a {
		out[k] = val
	}
	out[name] = v
	return out
}
