package registry

import (
	"strings"
	"testing"

	"mccmesh/internal/grid"
)

type thing struct{ fraction float64 }

type ctor func(Args) (thing, error)

func newTestRegistry() *Registry[ctor] {
	r := New[ctor]("test widget")
	r.Register(Entry[ctor]{
		Name:   "hotspot",
		Doc:    "one hot node",
		Params: []Param{{Name: "fraction", Kind: Float}},
		New: func(a Args) (thing, error) {
			f, err := a.Float("fraction", 0.1)
			return thing{fraction: f}, err
		},
	})
	r.Register(Entry[ctor]{Name: "uniform", Aliases: []string{"random"}})
	return r
}

func TestLookupAndAlias(t *testing.T) {
	r := newTestRegistry()
	if _, err := r.Lookup("hotspot"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("HOTSPOT"); err != nil {
		t.Errorf("lookup should be case-insensitive: %v", err)
	}
	e, err := r.Lookup("random")
	if err != nil || e.Name != "uniform" {
		t.Errorf("alias lookup failed: %v %v", e, err)
	}
}

func TestUnknownNameIsActionable(t *testing.T) {
	r := newTestRegistry()
	_, err := r.Lookup("hotpsot")
	if err == nil {
		t.Fatal("unknown name should error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `did you mean "hotspot"?`) {
		t.Errorf("error should suggest the closest name: %q", msg)
	}
	if !strings.Contains(msg, "hotspot, uniform") {
		t.Errorf("error should list the valid names: %q", msg)
	}
	if !strings.Contains(msg, "test widget") {
		t.Errorf("error should name the component family: %q", msg)
	}
	// A name nothing like any entry gets the list but no suggestion.
	_, err = r.Lookup("zzzzzzzz")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off name should not get a suggestion: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := newTestRegistry()
	cases := map[string]Entry[ctor]{
		"duplicate name":        {Name: "hotspot"},
		"name over alias":       {Name: "random"},
		"alias over name":       {Name: "fresh", Aliases: []string{"uniform"}},
		"alias over alias":      {Name: "fresh2", Aliases: []string{"random"}},
		"empty name":            {Name: ""},
		"case-insensitive dupe": {Name: "HotSpot"},
	}
	for label, e := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register should panic", label)
				}
			}()
			r.Register(e)
		}()
	}
}

func TestCheckArgs(t *testing.T) {
	r := newTestRegistry()
	e, _ := r.Lookup("hotspot")
	if err := e.CheckArgs(Args{"fraction": 0.3}); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
	err := e.CheckArgs(Args{"fractoin": 0.3})
	if err == nil {
		t.Fatal("unknown parameter should error")
	}
	if !strings.Contains(err.Error(), `did you mean "fraction"?`) {
		t.Errorf("parameter error should suggest the closest name: %q", err)
	}
}

func TestNamesAndEntriesSorted(t *testing.T) {
	r := newTestRegistry()
	names := r.Names()
	if len(names) != 2 || names[0] != "hotspot" || names[1] != "uniform" {
		t.Errorf("Names() = %v", names)
	}
	entries := r.Entries()
	if len(entries) != 2 || entries[0].Name != "hotspot" {
		t.Errorf("Entries() misordered: %v", entries)
	}
	if r.Family() != "test widget" {
		t.Errorf("Family() = %q", r.Family())
	}
}

func TestArgsCoercions(t *testing.T) {
	a := Args{
		"count":    float64(12), // how encoding/json delivers numbers
		"rate":     0.5,
		"whole":    3,
		"flag":     true,
		"label":    "x",
		"target":   []any{float64(1), float64(2), float64(3)},
		"halfOpen": 1.5,
	}
	if v, err := a.Int("count", 0); err != nil || v != 12 {
		t.Errorf("Int coercion: %v %v", v, err)
	}
	if v, err := a.Int("missing", 7); err != nil || v != 7 {
		t.Errorf("Int default: %v %v", v, err)
	}
	if _, err := a.Int("halfOpen", 0); err == nil {
		t.Error("fractional float should not coerce to int")
	}
	if v, err := a.Float("whole", 0); err != nil || v != 3 {
		t.Errorf("Float from int: %v %v", v, err)
	}
	if v, err := a.Bool("flag", false); err != nil || !v {
		t.Errorf("Bool: %v %v", v, err)
	}
	if _, err := a.Bool("label", false); err == nil {
		t.Error("string should not coerce to bool")
	}
	if v, err := a.String("label", ""); err != nil || v != "x" {
		t.Errorf("String: %v %v", v, err)
	}
	if p, err := a.PointAt("target", grid.Point{}); err != nil || p != (grid.Point{X: 1, Y: 2, Z: 3}) {
		t.Errorf("Point: %v %v", p, err)
	}
	if _, err := a.PointAt("rate", grid.Point{}); err == nil {
		t.Error("scalar should not coerce to point")
	}
	var nilArgs Args
	out := nilArgs.With("k", 1)
	if out["k"] != 1 || nilArgs != nil {
		t.Errorf("With on nil receiver: %v %v", out, nilArgs)
	}
	base := Args{"a": 1}
	derived := base.With("b", 2)
	if _, leaked := base["b"]; leaked {
		t.Error("With must not mutate the receiver")
	}
	if derived["a"] != 1 || derived["b"] != 2 {
		t.Errorf("With result wrong: %v", derived)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"hotspot", "hotspot", 0},
		{"hotpsot", "hotspot", 1}, // adjacent transposition
		{"uniform", "unifrom", 1},
		{"mcc", "rfb", 3},
		{"", "abc", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
