// Package registry provides the generic name → constructor registries behind
// the declarative scenario API. A Registry carries, for every entry, a
// constructor plus a parameter schema, so registering a third-party traffic
// pattern, information model or fault injector is one line and the CLI can
// list every component with its knobs. Lookups fail with actionable errors:
// an unknown name reports the closest registered name and the full list of
// valid names.
package registry

import (
	"fmt"
	"sort"
	"strings"
)

// Kind describes the JSON type of a parameter.
type Kind string

// Parameter kinds. JSON numbers decode as float64; Args coerces integral
// floats back to int for Int parameters.
const (
	Int    Kind = "int"
	Float  Kind = "float"
	Bool   Kind = "bool"
	String Kind = "string"
	Point  Kind = "point" // a [x, y, z] coordinate array
)

// Param is one schema entry: a named, typed, documented parameter accepted by
// a constructor.
type Param struct {
	// Name is the key expected in Args (lower-case by convention).
	Name string `json:"name"`
	// Kind is the parameter's JSON type.
	Kind Kind `json:"kind"`
	// Doc is a one-line description shown by `mcc list`.
	Doc string `json:"doc,omitempty"`
	// Default describes the value used when the parameter is absent (for
	// documentation only; constructors apply their own defaults).
	Default any `json:"default,omitempty"`
}

// Entry is one registered component: a constructor of type T plus the schema
// of the parameters it accepts.
type Entry[T any] struct {
	// Name is the canonical registration name.
	Name string
	// Aliases are alternate names accepted by Lookup (e.g. "bit-reversal"
	// for "bitrev").
	Aliases []string
	// Doc is a one-line description shown by `mcc list`.
	Doc string
	// Params is the schema of the parameters the constructor accepts.
	Params []Param
	// New is the constructor. Its signature is the registry's type parameter,
	// so different registries can demand different context arguments (a mesh,
	// a model, nothing) without interface juggling.
	New T
}

// HasParam reports whether the entry's schema declares the named parameter.
func (e *Entry[T]) HasParam(name string) bool {
	for _, p := range e.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// CheckArgs validates the argument names against the entry's schema. Unknown
// names fail with the closest schema name and the full parameter list, so a
// typo in a spec file is a one-look fix.
func (e *Entry[T]) CheckArgs(args Args) error {
	for name := range args {
		known := false
		for _, p := range e.Params {
			if p.Name == name {
				known = true
				break
			}
		}
		if !known {
			if len(e.Params) == 0 {
				return fmt.Errorf("unknown parameter %q (%q takes no parameters)", name, e.Name)
			}
			valid := make([]string, len(e.Params))
			for i, p := range e.Params {
				valid[i] = p.Name
			}
			return fmt.Errorf("unknown parameter %q%s (valid: %s)", name, suggestion(name, valid), strings.Join(valid, ", "))
		}
	}
	return nil
}

// Registry maps names to entries of one component family. The type parameter
// is the constructor signature stored in each entry. The zero value is not
// usable; call New.
type Registry[T any] struct {
	family  string // e.g. "traffic pattern", used in error messages
	order   []string
	entries map[string]*Entry[T]
	aliases map[string]string
}

// New returns an empty registry for the named component family ("traffic
// pattern", "information model", "fault injector", ...). The family name
// appears in error messages.
func New[T any](family string) *Registry[T] {
	return &Registry[T]{
		family:  family,
		entries: map[string]*Entry[T]{},
		aliases: map[string]string{},
	}
}

// Register adds an entry. It panics when the name (or one of its aliases) is
// already taken: component names are a global API surface, and a silent
// overwrite would make behaviour depend on package-initialisation order.
func (r *Registry[T]) Register(e Entry[T]) {
	if e.Name == "" {
		panic(fmt.Sprintf("registry: cannot register a %s with an empty name", r.family))
	}
	name := strings.ToLower(e.Name)
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("registry: duplicate %s %q", r.family, name))
	}
	if prior, dup := r.aliases[name]; dup {
		panic(fmt.Sprintf("registry: %s name %q already registered as an alias of %q", r.family, name, prior))
	}
	for _, alias := range e.Aliases {
		alias = strings.ToLower(alias)
		if _, dup := r.entries[alias]; dup {
			panic(fmt.Sprintf("registry: %s alias %q collides with a registered name", r.family, alias))
		}
		if prior, dup := r.aliases[alias]; dup {
			panic(fmt.Sprintf("registry: %s alias %q already registered for %q", r.family, alias, prior))
		}
	}
	stored := e
	stored.Name = name
	r.entries[name] = &stored
	r.order = append(r.order, name)
	for _, alias := range e.Aliases {
		r.aliases[strings.ToLower(alias)] = name
	}
}

// Lookup resolves a name or alias (case-insensitively). Unknown names fail
// with the closest registered name ("did you mean ...?") and the full list of
// valid names.
func (r *Registry[T]) Lookup(name string) (*Entry[T], error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canonical, ok := r.aliases[key]; ok {
		key = canonical
	}
	if e, ok := r.entries[key]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("unknown %s %q%s (valid: %s)",
		r.family, name, suggestion(key, r.candidateNames()), strings.Join(r.Names(), ", "))
}

// Names returns the canonical registered names in sorted order.
func (r *Registry[T]) Names() []string {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	return names
}

// Entries returns every entry in sorted name order (for `mcc list`).
func (r *Registry[T]) Entries() []*Entry[T] {
	out := make([]*Entry[T], 0, len(r.order))
	for _, name := range r.Names() {
		out = append(out, r.entries[name])
	}
	return out
}

// Family returns the component family name the registry was created with.
func (r *Registry[T]) Family() string { return r.family }

// candidateNames returns every name and alias, for typo matching.
func (r *Registry[T]) candidateNames() []string {
	names := append([]string(nil), r.order...)
	for alias := range r.aliases {
		names = append(names, alias)
	}
	return names
}

// suggestion returns ` (did you mean %q?)` for the closest candidate within a
// small edit distance, or the empty string when nothing is close enough.
func suggestion(name string, candidates []string) string {
	best, bestDist := "", 3 // accept at most two edits
	sort.Strings(candidates)
	for _, c := range candidates {
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	if best == "" {
		return ""
	}
	return fmt.Sprintf(" (did you mean %q?)", best)
}

// editDistance is the Damerau–Levenshtein distance restricted to adjacent
// transpositions, so the classic "hotpsot" typo counts as one edit.
func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := prev2[j-2] + 1; t < cur[j] {
					cur[j] = t
				}
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
